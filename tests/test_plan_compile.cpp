// Compiled communication plans (ncsend/plan/): compile determinism,
// replay-vs-direct byte equivalence across patterns x schemes (incl.
// rendezvous, RMA, NIC contention, and extrapolated iteration counts),
// pass on/off charge accounting, the experiment-layer routing (silent
// fallback vs strict replay_iters, jobs=1 vs jobs=4 identity), the
// validate() rejection of pinned-state schemes, and the --iters flag.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ncsend/ncsend.hpp"
#include "ncsend/plan/comm_plan.hpp"

using namespace ncsend;
using minimpi::MachineProfile;
namespace mplan = minimpi::plan;

namespace {

minimpi::UniverseOptions base_opts() {
  minimpi::UniverseOptions opts;
  opts.profile = &MachineProfile::skx_impi();
  opts.functional = true;
  opts.functional_payload_limit = 1 << 16;
  return opts;
}

Layout stride2(std::size_t elems) { return Layout::strided(elems, 1, 2); }

std::string dump_of(const plan::CommPlan& cp) {
  std::ostringstream os;
  cp.dump(os);
  return os.str();
}

void expect_same_timing(const TimingStats& a, const TimingStats& b,
                        const std::string& what) {
  EXPECT_EQ(a.mean, b.mean) << what;
  EXPECT_EQ(a.stddev, b.stddev) << what;
  EXPECT_EQ(a.min, b.min) << what;
  EXPECT_EQ(a.max, b.max) << what;
  EXPECT_EQ(a.samples, b.samples) << what;
  EXPECT_EQ(a.rejected, b.rejected) << what;
}

}  // namespace

TEST(PlanCompile, DeterministicAndValid) {
  const auto pattern = CommPattern::by_name("transpose(3)");
  HarnessConfig cfg;
  cfg.reps = 5;
  const Layout layout = stride2(1024);
  const plan::CommPlan a =
      plan::compile_cell(base_opts(), *pattern, "vector type", layout, cfg);
  const plan::CommPlan b =
      plan::compile_cell(base_opts(), *pattern, "vector type", layout, cfg);
  ASSERT_TRUE(a.valid) << a.invalid_reason;
  ASSERT_TRUE(b.valid) << b.invalid_reason;
  EXPECT_EQ(a.captured_reps, 2);  // flushed capture: cold + steady
  EXPECT_EQ(dump_of(a), dump_of(b));
  EXPECT_NE(dump_of(a).find("steady"), std::string::npos);
}

TEST(PlanCompile, ReplayMatchesDirectAcrossPatternsAndSchemes) {
  const std::vector<std::string> patterns = {"pingpong", "multi-pair(2)",
                                             "halo2d(2x2)", "transpose(3)"};
  const std::vector<std::string> schemes = {
      "reference", "vector type", "packing(p)", "buffered",
      "onesided",  "onesided-pscw", "isend(v)", "ssend(v)"};
  HarnessConfig cfg;
  cfg.reps = 5;
  const Layout layout = stride2(1024);
  for (const auto& pname : patterns) {
    const auto pattern = CommPattern::by_name(pname);
    for (const auto& sname : schemes) {
      const std::string what = pname + " / " + sname;
      const RunResult direct = run_pattern_experiment(
          base_opts(), *pattern, sname, layout, cfg);
      const plan::CommPlan cp =
          plan::compile_cell(base_opts(), *pattern, sname, layout, cfg);
      ASSERT_TRUE(cp.valid) << what << ": " << cp.invalid_reason;
      expect_same_timing(direct.timing, cp.replay(cfg.reps).timing, what);
    }
  }
}

TEST(PlanCompile, ExtrapolatedReplayMatchesLongDirectRun) {
  // Capture stays at 2 reps however many are requested; replaying the
  // steady-state program out to N must equal the N-rep direct run.
  const auto pattern = CommPattern::by_name("transpose(3)");
  HarnessConfig cfg;
  cfg.reps = 20;
  const Layout layout = stride2(4096);
  const RunResult direct =
      run_pattern_experiment(base_opts(), *pattern, "vector type", layout,
                             cfg);
  const plan::CommPlan cp = plan::compile_cell(base_opts(), *pattern,
                                               "vector type", layout, cfg);
  ASSERT_TRUE(cp.valid) << cp.invalid_reason;
  EXPECT_EQ(cp.captured_reps, 2);
  expect_same_timing(direct.timing, cp.replay(20).timing, "extrapolated");
}

TEST(PlanCompile, RendezvousAndContentionReplayExactly) {
  // Large strided payloads go through the rendezvous protocol and,
  // with NIC-occupancy contention on, through per-rank FIFO ledgers —
  // the interpreter must reproduce both.
  minimpi::UniverseOptions opts = base_opts();
  opts.nic_occupancy_contention = true;
  const auto pattern = CommPattern::by_name("transpose(4)");
  HarnessConfig cfg;
  cfg.reps = 6;
  const Layout layout = stride2(1 << 19);  // 4 MiB payload: rendezvous
  const RunResult direct =
      run_pattern_experiment(opts, *pattern, "vector type", layout, cfg);
  const plan::CommPlan cp =
      plan::compile_cell(opts, *pattern, "vector type", layout, cfg);
  ASSERT_TRUE(cp.valid) << cp.invalid_reason;
  EXPECT_TRUE(cp.contention);
  expect_same_timing(direct.timing, cp.replay(cfg.reps).timing,
                     "contention");
}

TEST(PlanCompile, UnflushedCaptureNeedsThreeReps) {
  const auto pattern = CommPattern::by_name("pingpong");
  HarnessConfig cfg;
  cfg.flush = false;
  cfg.reps = 2;
  const Layout layout = stride2(1024);
  const plan::CommPlan bad = plan::compile_cell(base_opts(), *pattern,
                                                "vector type", layout, cfg);
  EXPECT_FALSE(bad.valid);
  EXPECT_NE(bad.invalid_reason.find("3 reps"), std::string::npos);

  // With >= 3 unflushed reps the warm steady state is captured and
  // replay still matches direct execution exactly.
  cfg.reps = 6;
  const RunResult direct = run_pattern_experiment(
      base_opts(), *pattern, "vector type", layout, cfg);
  const plan::CommPlan cp = plan::compile_cell(base_opts(), *pattern,
                                               "vector type", layout, cfg);
  ASSERT_TRUE(cp.valid) << cp.invalid_reason;
  EXPECT_EQ(cp.captured_reps, 3);
  expect_same_timing(direct.timing, cp.replay(cfg.reps).timing,
                     "unflushed");
}

TEST(PlanPasses, AggregationChargesVisiblyAndChangesTime) {
  // packing(p) posts several same-(peer, tag) chunk isends per step;
  // with the eager limit raised past the chunk size they are all
  // eager-posted and eligible for aggregation.  The limit must also
  // cover the *merged* total (2 MiB): the pass keeps the eager arm, so
  // it refuses any merge that would overshoot the limit (and the static
  // verifier would reject the plan as eager_overflow if it did).
  minimpi::UniverseOptions opts = base_opts();
  opts.eager_limit_override = std::size_t{1} << 22;
  const auto pattern = CommPattern::by_name("transpose(2)");
  HarnessConfig cfg;
  cfg.reps = 4;
  const Layout layout = stride2(1 << 18);  // 2 MiB payload: 4 chunks

  const plan::CommPlan plain =
      plan::compile_cell(opts, *pattern, "packing(p)", layout, cfg);
  ASSERT_TRUE(plain.valid) << plain.invalid_reason;
  EXPECT_TRUE(plain.pass_charges.empty());

  plan::PassOptions passes;
  passes.aggregate_small = true;
  const plan::CommPlan merged =
      plan::compile_cell(opts, *pattern, "packing(p)", layout, cfg, passes);
  ASSERT_TRUE(merged.valid) << merged.invalid_reason;
  ASSERT_FALSE(merged.pass_charges.empty());
  for (const plan::PassCharge& c : merged.pass_charges) {
    EXPECT_EQ(c.atom, minimpi::ChargeAtom::internal_copy);
    EXPECT_GT(c.seconds, 0.0);
    EXPECT_GE(c.merged, 2u);
  }
  // The pass deliberately changes modeled time: fewer injections, one
  // extra coalescing copy.
  EXPECT_NE(plain.replay(cfg.reps).timing.mean,
            merged.replay(cfg.reps).timing.mean);
  // And the charge shows up in the dump.
  EXPECT_NE(dump_of(merged).find("aggregate_small"), std::string::npos);
  EXPECT_NE(dump_of(merged).find("pass-inserted"), std::string::npos);
}

TEST(PlanPasses, SortInjectionsReordersBySizeWithFifoGuard) {
  using mplan::Action;
  using mplan::Op;
  using mplan::SendArm;
  const minimpi::CostModel model(MachineProfile::skx_impi(), std::nullopt,
                                 1);
  const auto send = [](int peer, int tag, std::size_t bytes,
                       int event) {
    Action a;
    a.op = Op::send;
    a.arm = SendArm::eager_posted;
    a.peer = peer;
    a.tag = tag;
    a.bytes = bytes;
    a.stats = minimpi::BlockStats{1, bytes, bytes, bytes};
    a.event = event;
    return a;
  };

  // Distinct peers: reorder is allowed and sorts ascending by size.
  mplan::RankProgram prog = {send(1, 17, 3000, 0), send(2, 17, 1000, 1),
                             send(3, 17, 2000, 2)};
  std::vector<plan::PassCharge> charges;
  ASSERT_TRUE(plan::sort_injections_program(prog, model, charges));
  ASSERT_EQ(prog.size(), 4u);  // + inserted bookkeeping charge
  EXPECT_EQ(prog[0].op, Op::advance);
  EXPECT_TRUE(prog[0].inserted);
  EXPECT_EQ(prog[0].atom, minimpi::ChargeAtom::call_overhead);
  EXPECT_EQ(prog[1].bytes, 1000u);
  EXPECT_EQ(prog[2].bytes, 2000u);
  EXPECT_EQ(prog[3].bytes, 3000u);
  ASSERT_EQ(charges.size(), 1u);
  EXPECT_GT(charges[0].seconds, 0.0);

  // Same (peer, tag) twice: swapping them would break message-order
  // FIFO, so the run must be left alone.
  mplan::RankProgram fifo = {send(1, 17, 3000, 0), send(1, 17, 1000, 1)};
  charges.clear();
  EXPECT_FALSE(plan::sort_injections_program(fifo, model, charges));
  EXPECT_EQ(fifo.size(), 2u);
  EXPECT_EQ(fifo[0].bytes, 3000u);
  EXPECT_TRUE(charges.empty());
}

TEST(PlanExperiment, CompiledReplayPlanMatchesDirectAtAnyJobCount) {
  ExperimentPlan plan;
  plan.name = "replay_identity";
  plan.patterns = {"transpose(3)", "pingpong"};
  plan.schemes = {"reference", "vector type", "packing(p)"};
  plan.sizes_bytes = {8'192, 262'144};
  plan.harness.reps = 5;
  plan.functional_payload_limit = 1 << 14;

  const PlanResult direct = run_plan(plan, {1});
  plan.compiled_replay = true;
  const PlanResult replay1 = run_plan(plan, {1});
  const PlanResult replay4 = run_plan(plan, {4});

  const auto json_of = [](const PlanResult& r) {
    ResultStore store;
    store.add_plan(r);
    std::ostringstream os;
    store.write_bench_pattern_sweep_json(os);
    return os.str();
  };
  EXPECT_EQ(json_of(direct), json_of(replay1));
  EXPECT_EQ(json_of(replay1), json_of(replay4));
}

TEST(PlanExperiment, SilentFallbackWhenUncompilable) {
  // reps=1 has no steady state to capture, so compiled_replay quietly
  // runs the cell directly — same result, no error.
  ExperimentPlan plan;
  plan.patterns = {"pingpong"};
  plan.schemes = {"vector type"};
  plan.sizes_bytes = {8'192};
  plan.harness.reps = 1;
  const PlanResult direct = run_plan(plan, {1});
  plan.compiled_replay = true;
  const PlanResult fallback = run_plan(plan, {1});
  expect_same_timing(direct.sweep(0, 0).cells[0][0].timing,
                     fallback.sweep(0, 0).cells[0][0].timing, "fallback");
}

TEST(PlanExperiment, StrictReplayItersRejectsUncompilableCells) {
  ExperimentPlan plan;
  plan.patterns = {"pingpong"};
  plan.schemes = {"vector type"};
  plan.sizes_bytes = {8'192};
  plan.harness.reps = 1;  // uncompilable: no steady state
  plan.replay_iters = 10;
  EXPECT_THROW(run_plan(plan, {1}), minimpi::Error);
}

TEST(PlanExperiment, ReplayItersExtrapolatesTheSamplePopulation) {
  ExperimentPlan plan;
  plan.patterns = {"transpose(3)"};
  plan.schemes = {"vector type"};
  plan.sizes_bytes = {8'192};
  plan.harness.reps = 4;
  plan.replay_iters = 25;
  const PlanResult r = run_plan(plan, {1});
  EXPECT_EQ(r.sweep(0, 0).cells[0][0].timing.samples, 25);
}

TEST(PlanExperiment, ValidateRejectsPinnedStateSchemesUnderReplayIters) {
  ExperimentPlan plan;
  plan.schemes = {"reference", "buffered"};
  plan.validate();  // fine without extrapolated replay
  plan.compiled_replay = true;
  plan.validate();  // capture-length replay is fine too
  plan.replay_iters = 50;
  EXPECT_THROW(plan.validate(), minimpi::Error);
  plan.schemes = {"reference", "vector type"};
  plan.validate();  // no pinned-state scheme: accepted
}

TEST(PlanCli, ItersFlagValidatedAndImpliesReplay) {
  std::string error;
  {
    const char* argv[] = {"bench", "--iters", "50"};
    const auto cli = BenchCli::try_parse(3, const_cast<char**>(argv),
                                         &error);
    ASSERT_TRUE(cli.has_value()) << error;
    EXPECT_EQ(cli->iters, 50);
    EXPECT_TRUE(cli->replay);
  }
  {
    const char* argv[] = {"bench", "--replay"};
    const auto cli = BenchCli::try_parse(2, const_cast<char**>(argv),
                                         &error);
    ASSERT_TRUE(cli.has_value()) << error;
    EXPECT_TRUE(cli->replay);
    EXPECT_EQ(cli->iters, 0);
  }
  {
    const char* argv[] = {"bench", "--iters", "0"};
    EXPECT_FALSE(BenchCli::try_parse(3, const_cast<char**>(argv), &error)
                     .has_value());
  }
  {
    const char* argv[] = {"bench", "--iters", "many"};
    EXPECT_FALSE(BenchCli::try_parse(3, const_cast<char**>(argv), &error)
                     .has_value());
    EXPECT_NE(error.find("--iters"), std::string::npos);
  }
  {
    const char* argv[] = {"bench", "--iters"};
    EXPECT_FALSE(BenchCli::try_parse(2, const_cast<char**>(argv), &error)
                     .has_value());
  }
}
