// Edge cases of the pack-engine fast paths (copy_block size dispatch and
// the strided8 eligibility test): odd block sizes must fall through to
// the generic memcpy arm, hvector strides that are not a multiple of 8
// must reject the strided8 kernel, and resized wrappers — even stacked —
// must not hide an eligible hvector.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "minimpi/datatype/pack.hpp"

using namespace minimpi;

namespace {

std::vector<double> iota_doubles(std::size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 1.0);
  return v;
}

class OddBlock : public ::testing::TestWithParam<std::size_t> {};

// None of these hit the 4/8/16/32/64 constant-size cases of copy_block.
INSTANTIATE_TEST_SUITE_P(Sizes, OddBlock,
                         ::testing::Values(1, 3, 5, 7, 9, 12, 24, 33, 65,
                                           100),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

TEST_P(OddBlock, DefaultArmPacksExactBytes) {
  const std::size_t blocklen = GetParam();
  const std::size_t count = 6;
  const std::ptrdiff_t stride =
      static_cast<std::ptrdiff_t>(blocklen) + 11;  // gap of 11 bytes
  Datatype vec = Datatype::vector(count, blocklen, stride, Datatype::byte());
  vec.commit();
  ASSERT_EQ(vec.size(), count * blocklen);

  std::vector<std::byte> host(count * static_cast<std::size_t>(stride) + 8);
  for (std::size_t i = 0; i < host.size(); ++i)
    host[i] = static_cast<std::byte>(i * 37 + 1);

  std::vector<std::byte> packed(vec.size());
  std::size_t pos = 0;
  pack(host.data(), 1, vec, packed.data(), packed.size(), pos);
  EXPECT_EQ(pos, vec.size());
  for (std::size_t b = 0; b < count; ++b)
    for (std::size_t i = 0; i < blocklen; ++i)
      EXPECT_EQ(packed[b * blocklen + i],
                host[b * static_cast<std::size_t>(stride) + i])
          << "block " << b << " byte " << i;

  // Round trip through the scatter direction.
  std::vector<std::byte> back(host.size(), std::byte{0});
  pos = 0;
  unpack(packed.data(), packed.size(), pos, back.data(), 1, vec);
  for (std::size_t i = 0; i < host.size(); ++i) {
    const bool in_layout =
        i < count * static_cast<std::size_t>(stride) &&
        i % static_cast<std::size_t>(stride) < blocklen;
    EXPECT_EQ(back[i], in_layout ? host[i] : std::byte{0}) << i;
  }
}

class UnalignedStride : public ::testing::TestWithParam<std::ptrdiff_t> {};

// Byte strides that are NOT multiples of 8: the strided8 kernel (which
// walks the buffer in whole doubles) must refuse these, or packing would
// read from the wrong offsets.
INSTANTIATE_TEST_SUITE_P(Strides, UnalignedStride,
                         ::testing::Values(9, 12, 17, 20, 28, 31),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param);
                         });

TEST_P(UnalignedStride, RejectsStrided8AndMatchesGenericWalker) {
  const std::ptrdiff_t stride_bytes = GetParam();
  const std::size_t count = 24;
  Datatype hv = Datatype::hvector(count, 1, stride_bytes, Datatype::float64());
  hv.commit();
  // Same typemap via hindexed, which as_strided8 can never match.
  std::vector<std::size_t> bl(count, 1);
  std::vector<std::ptrdiff_t> dis(count);
  for (std::size_t i = 0; i < count; ++i)
    dis[i] = static_cast<std::ptrdiff_t>(i) * stride_bytes;
  Datatype idx = Datatype::hindexed(bl, dis, Datatype::float64());
  idx.commit();

  std::vector<std::byte> host(count * static_cast<std::size_t>(stride_bytes) +
                              16);
  for (std::size_t i = 0; i < host.size(); ++i)
    host[i] = static_cast<std::byte>(i * 131 + 7);

  std::vector<std::byte> via_hv(hv.size()), via_idx(idx.size());
  std::size_t pos = 0;
  pack(host.data(), 1, hv, via_hv.data(), via_hv.size(), pos);
  pos = 0;
  pack(host.data(), 1, idx, via_idx.data(), via_idx.size(), pos);
  ASSERT_EQ(via_hv.size(), via_idx.size());
  EXPECT_EQ(std::memcmp(via_hv.data(), via_idx.data(), via_hv.size()), 0);

  // gather/scatter run the same eligibility check on separate code paths.
  std::vector<std::byte> gathered(hv.size());
  gather(host.data(), 1, hv, gathered.data());
  EXPECT_EQ(std::memcmp(gathered.data(), via_idx.data(), hv.size()), 0);

  std::vector<std::byte> scattered(host.size(), std::byte{0});
  scatter(via_hv.data(), scattered.data(), 1, hv);
  std::vector<std::byte> scattered_ref(host.size(), std::byte{0});
  scatter(via_idx.data(), scattered_ref.data(), 1, idx);
  EXPECT_EQ(scattered, scattered_ref);
}

TEST(ResizedWrapper, SingleResizeStillDetectedAndCorrect) {
  // resized(hvector of 8-byte blocks): the unwrap loop in as_strided8
  // must see through the wrapper; replication follows the new extent.
  Datatype hv = Datatype::hvector(5, 1, 3 * 8, Datatype::float64());
  Datatype rs = Datatype::resized(hv, 0, 20 * 8);
  rs.commit();
  const auto host = iota_doubles(64);
  std::vector<std::byte> packed(2 * rs.size());
  std::size_t pos = 0;
  pack(host.data(), 2, rs, packed.data(), packed.size(), pos);
  const auto* d = reinterpret_cast<const double*>(packed.data());
  for (std::size_t e = 0; e < 2; ++e)
    for (std::size_t i = 0; i < 5; ++i)
      EXPECT_EQ(d[e * 5 + i], host[e * 20 + 3 * i]) << e << "," << i;
}

TEST(ResizedWrapper, StackedResizesStillDetectedAndCorrect) {
  // Two resized wrappers stacked: the detector loops over *all* resized
  // nodes, not just one; only the outermost extent governs replication.
  Datatype vec = Datatype::vector(4, 1, 2, Datatype::float64());
  Datatype rs1 = Datatype::resized(vec, 0, 9 * 8);
  Datatype rs2 = Datatype::resized(rs1, 0, 11 * 8);
  rs2.commit();
  EXPECT_EQ(rs2.extent(), std::size_t{11 * 8});
  const auto host = iota_doubles(64);
  std::vector<std::byte> packed(3 * rs2.size());
  std::size_t pos = 0;
  pack(host.data(), 3, rs2, packed.data(), packed.size(), pos);
  const auto* d = reinterpret_cast<const double*>(packed.data());
  for (std::size_t e = 0; e < 3; ++e)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(d[e * 4 + i], host[e * 11 + 2 * i]) << e << "," << i;

  // Unpack must scatter back to the same places.
  std::vector<double> back(64, -1.0);
  pos = 0;
  unpack(packed.data(), packed.size(), pos, back.data(), 3, rs2);
  for (std::size_t e = 0; e < 3; ++e)
    for (std::size_t i = 0; i < 4; ++i)
      EXPECT_EQ(back[e * 11 + 2 * i], host[e * 11 + 2 * i]);
}

TEST(ResizedWrapper, ResizedUnalignedStrideStillRejected) {
  // A resized wrapper must not make an ineligible hvector (stride % 8
  // != 0) sneak past the check: differential against hindexed.
  const std::ptrdiff_t stride_bytes = 12;
  const std::size_t count = 10;
  Datatype hv = Datatype::hvector(count, 1, stride_bytes, Datatype::float64());
  Datatype rs = Datatype::resized(hv, 0, 160);
  rs.commit();
  std::vector<std::size_t> bl(count, 1);
  std::vector<std::ptrdiff_t> dis(count);
  for (std::size_t i = 0; i < count; ++i)
    dis[i] = static_cast<std::ptrdiff_t>(i) * stride_bytes;
  Datatype idx = Datatype::hindexed(bl, dis, Datatype::float64());
  idx.commit();

  std::vector<std::byte> host(256);
  for (std::size_t i = 0; i < host.size(); ++i)
    host[i] = static_cast<std::byte>(i + 3);
  std::vector<std::byte> a(rs.size()), b(idx.size());
  std::size_t pos = 0;
  pack(host.data(), 1, rs, a.data(), a.size(), pos);
  pos = 0;
  pack(host.data(), 1, idx, b.data(), b.size(), pos);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

}  // namespace
