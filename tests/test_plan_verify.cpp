// Static plan verifier (ncsend/plan/verify.*): zero false positives
// across the whole compilable pattern x scheme legend (every plan the
// compiler accepts must verify clean — the verifier runs as a mandatory
// compile stage, so a false positive would silently knock a cell back
// to direct execution), and hand-mutated programs produce exactly the
// typed diagnostic each corruption deserves.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ncsend/ncsend.hpp"
#include "ncsend/plan/comm_plan.hpp"
#include "ncsend/plan/verify.hpp"

using namespace ncsend;
using minimpi::MachineProfile;
namespace mplan = minimpi::plan;

namespace {

minimpi::UniverseOptions base_opts() {
  minimpi::UniverseOptions opts;
  opts.profile = &MachineProfile::skx_impi();
  opts.functional = true;
  opts.functional_payload_limit = 1 << 16;
  return opts;
}

Layout stride2(std::size_t elems) { return Layout::strided(elems, 1, 2); }

plan::CommPlan compile(const std::string& pattern_name,
                       const std::string& scheme,
                       const plan::PassOptions& passes = {}) {
  const auto pattern = CommPattern::by_name(pattern_name);
  HarnessConfig cfg;
  cfg.reps = 5;
  return plan::compile_cell(base_opts(), *pattern, scheme, stride2(1024),
                            cfg, passes);
}

bool has_kind(const plan::VerifyReport& report, plan::DiagKind kind) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const plan::PlanDiagnostic& d) {
                       return d.kind == kind;
                     });
}

std::string join_diags(const plan::VerifyReport& report) {
  std::string out;
  for (const auto& d : report.diagnostics) out += d.to_string() + "\n";
  return out;
}

/// Skeleton for the hand-built mutation cases: `nranks` ranks, one
/// captured rep each, no model (the eager check is scheme-compiled
/// plans' business), programs filled in by the test.
plan::CommPlan skeleton(int nranks) {
  plan::CommPlan cp;
  cp.nranks = nranks;
  cp.captured_reps = 1;
  cp.programs.assign(static_cast<std::size_t>(nranks), {mplan::RankProgram{}});
  return cp;
}

mplan::Action send_action(mplan::SendArm arm, minimpi::Rank dst,
                          minimpi::Tag tag, std::size_t bytes,
                          std::uint32_t event = 0) {
  mplan::Action a;
  a.op = mplan::Op::send;
  a.arm = arm;
  a.peer = dst;
  a.tag = tag;
  a.bytes = bytes;
  a.event = event;
  return a;
}

mplan::Action recv_action(minimpi::Rank src, minimpi::Tag tag,
                          std::size_t bytes) {
  mplan::Action a;
  a.op = mplan::Op::recv;
  a.peer = src;
  a.tag = tag;
  a.bytes = bytes;
  return a;
}

mplan::Action rma_action(mplan::Op op, minimpi::Rank target, int win,
                         std::size_t offset, std::size_t bytes) {
  mplan::Action a;
  a.op = op;
  a.peer = target;
  a.win = win;
  a.offset = offset;
  a.bytes = bytes;
  return a;
}

mplan::Action fence_action(int win) {
  mplan::Action a;
  a.op = mplan::Op::fence;
  a.win = win;
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// Zero false positives: every plan the compiler can produce, across the
// whole default legend, verifies clean.
// ---------------------------------------------------------------------------

TEST(PlanVerify, AcceptsEveryCompilableCellInTheLegend) {
  std::size_t verified = 0;
  for (const std::string& pname : CommPattern::names()) {
    std::unique_ptr<CommPattern> pattern;
    try {
      pattern = CommPattern::by_name(pname);
    } catch (const std::exception&) {
      continue;
    }
    for (const std::string& sname : pattern_scheme_names()) {
      plan::CommPlan cp;
      try {
        HarnessConfig cfg;
        cfg.reps = 5;
        cp = plan::compile_cell(base_opts(), *pattern, sname, stride2(1024),
                                cfg);
      } catch (const std::exception&) {
        continue;  // pattern rejects the scheme: not a cell
      }
      if (cp.programs.empty()) continue;  // uncompilable: nothing to verify
      const plan::VerifyReport report = plan::verify_plan(cp);
      EXPECT_TRUE(report.ok())
          << pname << " / " << sname << ":\n" << join_diags(report);
      ++verified;
    }
  }
  // The legend must actually have exercised the verifier broadly — a
  // silent "everything fell back to direct execution" would make the
  // zero-false-positive claim vacuous.
  EXPECT_GE(verified, 50u) << "legend coverage collapsed";
}

TEST(PlanVerify, AcceptsPassRewrittenPrograms) {
  plan::PassOptions passes;
  passes.aggregate_small = true;
  passes.sort_injections = true;
  for (const std::string& pname :
       {std::string("pingpong"), std::string("halo2d(2x2)"),
        std::string("transpose(3)")}) {
    for (const std::string& sname :
         {std::string("isend(v)"), std::string("packing(p)")}) {
      const plan::CommPlan cp = compile(pname, sname, passes);
      if (cp.programs.empty()) continue;
      const plan::VerifyReport report = plan::verify_plan(cp);
      EXPECT_TRUE(report.ok())
          << pname << " / " << sname << ":\n" << join_diags(report);
    }
  }
}

// ---------------------------------------------------------------------------
// Mutations of a real compiled plan.
// ---------------------------------------------------------------------------

TEST(PlanVerify, DroppedRecvIsAnUnmatchedSend) {
  plan::CommPlan cp = compile("pingpong", "reference");
  ASSERT_FALSE(cp.programs.empty()) << cp.invalid_reason;
  // Drop the first recv from rank 1's first captured rep.
  auto& prog = cp.programs[1][0];
  const auto it =
      std::find_if(prog.begin(), prog.end(), [](const mplan::Action& a) {
        return a.op == mplan::Op::recv;
      });
  ASSERT_NE(it, prog.end());
  prog.erase(it);

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.match_complete);
  EXPECT_TRUE(has_kind(report, plan::DiagKind::unmatched_send))
      << join_diags(report);
}

TEST(PlanVerify, DroppedSendIsAnUnmatchedRecv) {
  plan::CommPlan cp = compile("pingpong", "reference");
  ASSERT_FALSE(cp.programs.empty()) << cp.invalid_reason;
  auto& prog = cp.programs[0][0];
  const auto it =
      std::find_if(prog.begin(), prog.end(), [](const mplan::Action& a) {
        return a.op == mplan::Op::send;
      });
  ASSERT_NE(it, prog.end());
  prog.erase(it);

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.match_complete);
  EXPECT_TRUE(has_kind(report, plan::DiagKind::unmatched_recv))
      << join_diags(report);
}

// ---------------------------------------------------------------------------
// Hand-built programs for corruptions real captures cannot produce.
// ---------------------------------------------------------------------------

TEST(PlanVerify, CyclicRendezvousPairIsADeadlock) {
  // Both ranks post a blocking rendezvous send *before* their receive:
  // each send's completion waits on the peer's recv, which sits behind
  // the peer's own blocked send.  The classic head-to-head deadlock.
  plan::CommPlan cp = skeleton(2);
  cp.programs[0][0] = {send_action(mplan::SendArm::rdv_blocking, 1, 0, 4096),
                       recv_action(1, 0, 4096)};
  cp.programs[1][0] = {send_action(mplan::SendArm::rdv_blocking, 0, 0, 4096),
                       recv_action(0, 0, 4096)};

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.deadlock_free);
  EXPECT_TRUE(has_kind(report, plan::DiagKind::deadlock_cycle))
      << join_diags(report);
  EXPECT_TRUE(report.match_complete) << join_diags(report);
}

TEST(PlanVerify, EagerHeadToHeadIsNotADeadlock) {
  // The same shape below the eager limit is legal: an eager send
  // completes locally, so the wait-for graph stays acyclic.  Guards the
  // deadlock check against over-approximating.
  plan::CommPlan cp = skeleton(2);
  cp.programs[0][0] = {send_action(mplan::SendArm::eager_blocking, 1, 0, 64),
                       recv_action(1, 0, 64)};
  cp.programs[1][0] = {send_action(mplan::SendArm::eager_blocking, 0, 0, 64),
                       recv_action(0, 0, 64)};

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_TRUE(report.ok()) << join_diags(report);
}

TEST(PlanVerify, OutOfBoundsPutOffsetIsReported) {
  plan::CommPlan cp = skeleton(2);
  cp.window_count = 1;
  cp.window_sizes = {{64, 64}};  // both ranks expose 64 bytes
  cp.programs[0][0] = {fence_action(0),
                       rma_action(mplan::Op::put, 1, 0, 60, 16),
                       fence_action(0)};
  cp.programs[1][0] = {fence_action(0), fence_action(0)};

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.rma_safe);
  EXPECT_TRUE(has_kind(report, plan::DiagKind::rma_out_of_bounds))
      << join_diags(report);
}

TEST(PlanVerify, OverlappingPutsInOneEpochAreReported) {
  plan::CommPlan cp = skeleton(2);
  cp.window_count = 1;
  cp.window_sizes = {{64, 64}};
  cp.programs[0][0] = {fence_action(0),
                       rma_action(mplan::Op::put, 1, 0, 0, 16),
                       rma_action(mplan::Op::put, 1, 0, 8, 16),
                       fence_action(0)};
  cp.programs[1][0] = {fence_action(0), fence_action(0)};

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.rma_safe);
  EXPECT_TRUE(has_kind(report, plan::DiagKind::rma_overlap))
      << join_diags(report);
}

TEST(PlanVerify, DisjointPutsAcrossEpochsAreClean) {
  // Same offsets, but a fence between them: different epochs, no
  // overlap.  Guards the epoch-keying against over-approximating.
  plan::CommPlan cp = skeleton(2);
  cp.window_count = 1;
  cp.window_sizes = {{64, 64}};
  cp.programs[0][0] = {fence_action(0),
                       rma_action(mplan::Op::put, 1, 0, 0, 16),
                       fence_action(0),
                       rma_action(mplan::Op::put, 1, 0, 0, 16),
                       fence_action(0)};
  cp.programs[1][0] = {fence_action(0), fence_action(0), fence_action(0)};

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_TRUE(report.ok()) << join_diags(report);
}

TEST(PlanVerify, SamePeerTagReorderIsAFifoViolation) {
  // Sender posts 100 then 200 bytes on one (peer, tag); receiver
  // consumes 200 then 100.  Byte multisets agree, order does not —
  // exactly what an unsafe sort_injections rewrite would produce.
  plan::CommPlan cp = skeleton(2);
  cp.programs[0][0] = {send_action(mplan::SendArm::eager_posted, 1, 0, 100, 0),
                       send_action(mplan::SendArm::eager_posted, 1, 0, 200, 1)};
  cp.programs[1][0] = {recv_action(0, 0, 200), recv_action(0, 0, 100)};

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.pass_safe);
  EXPECT_TRUE(has_kind(report, plan::DiagKind::fifo_violation))
      << join_diags(report);
  // Not a size mismatch: the payload multisets agree.
  EXPECT_FALSE(has_kind(report, plan::DiagKind::size_mismatch))
      << join_diags(report);
}

TEST(PlanVerify, GenuinePayloadDisagreementIsASizeMismatch) {
  plan::CommPlan cp = skeleton(2);
  cp.programs[0][0] = {send_action(mplan::SendArm::eager_posted, 1, 0, 100)};
  cp.programs[1][0] = {recv_action(0, 0, 128)};

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.match_complete);
  EXPECT_TRUE(has_kind(report, plan::DiagKind::size_mismatch))
      << join_diags(report);
}

TEST(PlanVerify, MissingBarrierArrivalIsACollectiveArity) {
  plan::CommPlan cp = skeleton(2);
  mplan::Action barrier;
  barrier.op = mplan::Op::barrier;
  cp.programs[0][0] = {barrier, barrier};
  cp.programs[1][0] = {barrier};  // never reaches generation 1

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.deadlock_free);
  EXPECT_TRUE(has_kind(report, plan::DiagKind::collective_arity))
      << join_diags(report);
}

TEST(PlanVerify, DanglingWaitAndBadPeerAreMalformed) {
  plan::CommPlan cp = skeleton(2);
  mplan::Action wait;
  wait.op = mplan::Op::wait_send;
  wait.event = 7;  // no send ever created event 7
  cp.programs[0][0] = {send_action(mplan::SendArm::eager_blocking, 5, 0, 8),
                       wait};
  cp.programs[1][0] = {};

  const plan::VerifyReport report = plan::verify_plan(cp);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.deadlock_free);
  EXPECT_TRUE(has_kind(report, plan::DiagKind::malformed))
      << join_diags(report);
}

// ---------------------------------------------------------------------------
// The verifier is wired into compile_cell as a mandatory stage: its
// to_string format is what `invalid_reason` would carry, and diagnostics
// name real program positions.
// ---------------------------------------------------------------------------

TEST(PlanVerify, DiagnosticsCarryProvenance) {
  plan::CommPlan cp = skeleton(2);
  cp.programs[0][0] = {send_action(mplan::SendArm::eager_posted, 1, 3, 100)};
  cp.programs[1][0] = {};

  const plan::VerifyReport report = plan::verify_plan(cp);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const plan::PlanDiagnostic& d = report.diagnostics.front();
  EXPECT_EQ(d.kind, plan::DiagKind::unmatched_send);
  EXPECT_EQ(d.rank, 0);
  EXPECT_EQ(d.rep, 0);
  EXPECT_EQ(d.action, 0u);
  EXPECT_NE(d.to_string().find("unmatched_send"), std::string::npos);
  EXPECT_NE(d.to_string().find("rank 0"), std::string::npos);
  EXPECT_STREQ(plan::diag_kind_name(d.kind), "unmatched_send");
}
