// Sweep driver and report generation.
#include <gtest/gtest.h>

#include <sstream>

#include "ncsend/ncsend.hpp"

using namespace ncsend;

namespace {

SweepConfig small_sweep() {
  SweepConfig cfg;
  cfg.sizes_bytes = {1024, 8192, 65536};
  cfg.schemes = {"reference", "copying", "packing(v)"};
  cfg.harness.reps = 3;
  return cfg;
}

TEST(LogSizes, CoverRangeWithWholeDoubles) {
  const auto sizes = log_sizes(1e3, 1e6, 3);
  ASSERT_FALSE(sizes.empty());
  EXPECT_GE(sizes.front(), 990u);
  EXPECT_LE(sizes.back(), 1'000'008u);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i] % 8, 0u);
    if (i) {
      EXPECT_GT(sizes[i], sizes[i - 1]);
    }
  }
  // Roughly 3 per decade over 3 decades.
  EXPECT_NEAR(static_cast<double>(sizes.size()), 10.0, 2.0);
}

TEST(PaperSizes, SpanThePaperRange) {
  const auto sizes = paper_sizes(4);
  EXPECT_NEAR(static_cast<double>(sizes.front()), 1e3, 10.0);
  EXPECT_NEAR(static_cast<double>(sizes.back()) / 1e9, 1.0, 0.01);
}

TEST(Sweep, ShapeAndMetadata) {
  const SweepResult r = run_sweep(small_sweep());
  EXPECT_EQ(r.profile_name, "skx-impi");
  EXPECT_EQ(r.sizes_bytes.size(), 3u);
  EXPECT_EQ(r.schemes.size(), 3u);
  ASSERT_EQ(r.cells.size(), 3u);
  ASSERT_EQ(r.cells[0].size(), 3u);
  EXPECT_TRUE(r.all_verified());
  EXPECT_NE(r.layout_name.find("strided"), std::string::npos);
}

TEST(Sweep, SlowdownRelativeToReference) {
  const SweepResult r = run_sweep(small_sweep());
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si) {
    EXPECT_NEAR(r.slowdown(si, 0), 1.0, 1e-9);   // reference vs itself
    // Copying can tie at latency-dominated sizes (quantized wtime) but
    // never wins; at the largest size the gather cost must show.
    EXPECT_GE(r.slowdown(si, 1), 1.0);
  }
  EXPECT_GT(r.slowdown(r.sizes_bytes.size() - 1, 1), 1.0);
}

TEST(Sweep, BandwidthConsistentWithTime) {
  const SweepResult r = run_sweep(small_sweep());
  for (std::size_t si = 0; si < r.sizes_bytes.size(); ++si)
    for (std::size_t ci = 0; ci < r.schemes.size(); ++ci)
      EXPECT_NEAR(r.bandwidth_GBps(si, ci) * r.time(si, ci) * 1e9,
                  static_cast<double>(r.sizes_bytes[si]),
                  static_cast<double>(r.sizes_bytes[si]) * 1e-6);
}

TEST(Sweep, CustomLayoutFactory) {
  SweepConfig cfg = small_sweep();
  cfg.sizes_bytes = {4096};
  cfg.layout_factory = [](std::size_t elems) {
    return Layout::strided(elems / 4, 4, 8);
  };
  const SweepResult r = run_sweep(cfg);
  EXPECT_NE(r.layout_name.find("b=4"), std::string::npos);
}

TEST(Sweep, EagerOverridePropagates) {
  SweepConfig cfg = small_sweep();
  cfg.schemes = {"reference"};
  cfg.sizes_bytes = {65544};  // just above skx-impi's 64 KiB eager limit
  const double with_rdv = run_sweep(cfg).time(0, 0);
  cfg.eager_limit_override = std::size_t{1} << 30;
  const double all_eager = run_sweep(cfg).time(0, 0);
  EXPECT_NE(with_rdv, all_eager);
}

TEST(Report, TablesContainAllSchemes) {
  const SweepResult r = run_sweep(small_sweep());
  std::ostringstream os;
  print_tables(os, r);
  const std::string out = os.str();
  for (const auto& s : r.schemes) EXPECT_NE(out.find(s), std::string::npos);
  EXPECT_NE(out.find("slowdown"), std::string::npos);
}

TEST(Report, CsvRowPerCell) {
  const SweepResult r = run_sweep(small_sweep());
  std::ostringstream os;
  write_csv(os, r);
  const std::string out = os.str();
  std::size_t rows = 0;
  for (const char ch : out)
    if (ch == '\n') ++rows;
  EXPECT_EQ(rows, 1 + r.sizes_bytes.size() * r.schemes.size());
  EXPECT_NE(out.find("skx-impi"), std::string::npos);
}

TEST(Report, AsciiPlotRenders) {
  const SweepResult r = run_sweep(small_sweep());
  std::ostringstream os;
  ascii_plot(os, r, Metric::time);
  const std::string out = os.str();
  EXPECT_NE(out.find("legend"), std::string::npos);
  EXPECT_GT(out.size(), 500u);
}

TEST(Report, FigureCombinesEverything) {
  const SweepResult r = run_sweep(small_sweep());
  std::ostringstream os;
  print_figure(os, r, "Test figure");
  const std::string out = os.str();
  EXPECT_NE(out.find("Test figure"), std::string::npos);
  EXPECT_NE(out.find("byte-exact"), std::string::npos);
}

}  // namespace
