// The pooled hot path's load-bearing invariants (DESIGN.md §2.12):
//
//   1. Recycling is invisible: a node handed back out of the free list
//      is field-for-field identical to a default-constructed one.  The
//      tripwire dirties *every* field `Envelope::reset()` scrubs, so a
//      field added to Envelope but forgotten in reset() fails here
//      before it can leak one message's state into the next.
//   2. The growth path works: acquiring past the reserve constructs
//      nodes (counted as misses), recycling refills the free list, and
//      a warm pool stops allocating.
//   3. The substitution argument holds end to end: a full pooled
//      `graph(ring:256)` measurement reproduces, byte for byte, the
//      golden captured from the pre-pool build.
#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "minimpi/base/pool.hpp"
#include "minimpi/net/machine_profile.hpp"
#include "minimpi/runtime/comm.hpp"
#include "minimpi/runtime/matching.hpp"
#include "ncsend/patterns/pattern.hpp"

using namespace ncsend;
using minimpi::ObjectPool;
using minimpi::PoolRef;
using minimpi::detail::Envelope;

namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(NCSEND_GOLDEN_DIR) + "/" + name;
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing golden file: " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Write garbage into every field `Envelope::reset()` must scrub.
void dirty(Envelope& e) {
  e.src = 7;
  e.dst = 11;
  e.tag = 42;
  e.bytes = 4096;
  e.signature.append(minimpi::BasicType::double_, 512);
  e.send_stats.block_count = 3;
  e.send_stats.total_bytes = 4096;
  e.send_stats.min_block = 8;
  e.send_stats.max_block = 4080;
  e.payload.assign(64, std::byte{0xAB});
  e.has_payload = true;
  e.eager = false;
  e.sender_done = 1.5;
  e.arrival = 2.5;
  e.needs_rdv_ack = true;
  e.sender_ready = 3.5;
  e.ack_ready = true;
  e.ack_value = 4.5;
  e.nic_gate.ticket = 99;
  e.bsend_reserved = 128;
}

/// Field-for-field comparison against a default-constructed envelope.
/// Enumerates the reset() contract: a new Envelope field that is not
/// checked here (and scrubbed there) is a stale-state bug waiting.
void expect_pristine(const Envelope& e) {
  EXPECT_EQ(e.src, 0);
  EXPECT_EQ(e.dst, 0);
  EXPECT_EQ(e.tag, 0);
  EXPECT_EQ(e.bytes, 0U);
  EXPECT_EQ(e.signature.total_bytes(), 0U);
  EXPECT_TRUE(e.signature.exact());
  EXPECT_EQ(e.send_stats.block_count, 0U);
  EXPECT_EQ(e.send_stats.total_bytes, 0U);
  EXPECT_EQ(e.send_stats.min_block, 0U);
  EXPECT_EQ(e.send_stats.max_block, 0U);
  EXPECT_TRUE(e.payload.empty());
  EXPECT_FALSE(e.has_payload);
  EXPECT_TRUE(e.eager);
  EXPECT_EQ(e.sender_done, 0.0);
  EXPECT_EQ(e.arrival, 0.0);
  EXPECT_FALSE(e.needs_rdv_ack);
  EXPECT_EQ(e.sender_ready, 0.0);
  EXPECT_FALSE(e.ack_ready);
  EXPECT_EQ(e.ack_value, 0.0);
  EXPECT_EQ(e.nic_gate.ledger, nullptr);
  EXPECT_EQ(e.nic_gate.ticket, 0U);
  EXPECT_EQ(e.bsend_pool, nullptr);
  EXPECT_EQ(e.bsend_reserved, 0U);
}

// --- 1. stale-state tripwire --------------------------------------------

TEST(PoolRecycling, RecycledEnvelopeIsPristine) {
  ObjectPool<Envelope> pool(1);
  Envelope* node = nullptr;
  {
    PoolRef<Envelope> ref = pool.acquire();
    node = ref.get();
    dirty(*ref);
  }  // last handle drops: node is reset() and recycled
  ASSERT_EQ(pool.free_count(), 1U);
  PoolRef<Envelope> again = pool.acquire();
  ASSERT_EQ(again.get(), node) << "expected the recycled node back";
  expect_pristine(*again);
}

TEST(PoolRecycling, PayloadAndSignatureCapacitySurvivesRecycling) {
  ObjectPool<Envelope> pool(1);
  {
    PoolRef<Envelope> ref = pool.acquire();
    ref->payload.assign(4096, std::byte{0x5C});
  }
  PoolRef<Envelope> again = pool.acquire();
  EXPECT_TRUE(again->payload.empty());
  EXPECT_GE(again->payload.capacity(), 4096U)
      << "reset() must clear contents but keep buffer capacity";
}

TEST(PoolRecycling, StandaloneEnvelopeDeletesCleanly) {
  // Tests construct pool-less envelopes; the handle must fall back to
  // plain delete instead of recycling into a nonexistent home.
  PoolRef<Envelope> ref{new Envelope};
  dirty(*ref);
  PoolRef<Envelope> second = ref;
  ref.reset();
  EXPECT_TRUE(second);  // still alive through the copy
}

// --- 2. pool-exhaustion growth path -------------------------------------

TEST(PoolRecycling, GrowthPastReserveCountsMisses) {
  ObjectPool<Envelope> pool(2);
  EXPECT_EQ(pool.capacity(), 2U);
  EXPECT_EQ(pool.free_count(), 2U);

  std::vector<PoolRef<Envelope>> live;
  live.reserve(4);
  for (int i = 0; i < 4; ++i) live.push_back(pool.acquire());

  EXPECT_EQ(pool.acquires(), 4U);
  EXPECT_EQ(pool.misses(), 2U) << "two acquires past the reserve";
  EXPECT_EQ(pool.capacity(), 4U);
  EXPECT_EQ(pool.free_count(), 0U);

  live.clear();
  EXPECT_EQ(pool.free_count(), 4U);

  // Warm pool: re-acquiring the peak working set allocates nothing.
  for (int i = 0; i < 4; ++i) live.push_back(pool.acquire());
  EXPECT_EQ(pool.misses(), 2U);
  EXPECT_EQ(pool.capacity(), 4U);
}

TEST(PoolRecycling, HandleCopiesShareOneRefcount) {
  ObjectPool<Envelope> pool(1);
  PoolRef<Envelope> a = pool.acquire();
  PoolRef<Envelope> b = a;
  PoolRef<Envelope> c = std::move(a);
  EXPECT_EQ(pool.free_count(), 0U);
  b.reset();
  EXPECT_EQ(pool.free_count(), 0U) << "c still holds the node";
  c.reset();
  EXPECT_EQ(pool.free_count(), 1U);
}

// --- 3. pooled run == pre-pool golden, byte for byte ---------------------

// Canonical golden text; must stay verbatim-identical to the generator
// that captured tests/golden/GOLDEN_pool_ring256.txt from the pre-pool
// build (hexfloat round-trips every bit of the virtual clocks).
std::string golden_ring256_text(const RunResult& r) {
  std::ostringstream os;
  os << "pattern graph(ring:256)\n"
     << "scheme " << r.scheme << "\n"
     << "layout " << r.layout << "\n"
     << "payload_bytes " << r.payload_bytes << "\n"
     << "samples " << r.timing.samples << "\n"
     << "rejected " << r.timing.rejected << "\n"
     << std::hexfloat << "mean " << r.timing.mean << "\n"
     << "stddev " << r.timing.stddev << "\n"
     << "min " << r.timing.min << "\n"
     << "max " << r.timing.max << "\n"
     << std::defaultfloat << "data_checked " << (r.data_checked ? 1 : 0)
     << "\n"
     << "verified " << (r.verified ? 1 : 0) << "\n";
  return os.str();
}

TEST(PoolRecycling, PooledRing256MatchesPrePoolGolden) {
  minimpi::UniverseOptions opts;
  opts.profile = &minimpi::MachineProfile::skx_impi();
  opts.functional = false;

  const auto pattern = CommPattern::by_name("graph(ring:256)");
  HarnessConfig cfg;
  cfg.reps = 6;
  cfg.verify_samples = 4;
  const Layout layout = Layout::strided(8192 / sizeof(double), 1, 2);
  const RunResult r = run_pattern_experiment(opts, *pattern, "vector type",
                                             layout, cfg);
  EXPECT_EQ(golden_ring256_text(r), read_golden("GOLDEN_pool_ring256.txt"));
}

}  // namespace
