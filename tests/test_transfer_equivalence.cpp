// The unified transfer-scheme layer's load-bearing invariants:
//
//   1. For every scheme in the shared legend, the `pingpong` pattern is
//      bit-identical to the §3.2 harness (skx + knl) — the two engines
//      share one charge-sequence source.
//   2. The refactored harness reproduces the seed BENCH_scheme_sweep /
//      BENCH_eager_limit JSON byte-exactly (goldens captured from the
//      pre-refactor build), and the engine reproduces the seed
//      BENCH_pattern_sweep bytes for the schemes it supported then.
//   3. issend is the nonblocking face of ssend: identical clocks when
//      waited immediately.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "ncsend/ncsend.hpp"

using namespace ncsend;
using minimpi::MachineProfile;

namespace {

std::string read_golden(const std::string& name) {
  const std::string path = std::string(NCSEND_GOLDEN_DIR) + "/" + name;
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing golden file: " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// --- 1. pingpong pattern == harness, whole legend, two profiles ---------

TEST(TransferEquivalence, PingpongPatternBitIdenticalToHarness) {
  const auto pingpong = CommPattern::by_name("pingpong");
  const Layout l = Layout::strided(4096, 1, 2);
  HarnessConfig cfg;
  cfg.reps = 3;
  for (const MachineProfile* profile :
       {&MachineProfile::skx_impi(), &MachineProfile::knl_impi()}) {
    for (const auto& scheme : pattern_scheme_names()) {
      minimpi::UniverseOptions opts;
      opts.profile = profile;
      opts.wtime_resolution = 0.0;  // exact clocks: equality is strict
      const RunResult via_pattern =
          run_pattern_experiment(opts, *pingpong, scheme, l, cfg);
      opts.nranks = 2;
      const RunResult via_harness = run_experiment(opts, scheme, l, cfg);
      EXPECT_EQ(via_pattern.timing.mean, via_harness.timing.mean)
          << scheme << " on " << profile->name;
      EXPECT_EQ(via_pattern.timing.stddev, via_harness.timing.stddev)
          << scheme << " on " << profile->name;
      EXPECT_EQ(via_pattern.payload_bytes, via_harness.payload_bytes)
          << scheme << " on " << profile->name;
      EXPECT_EQ(via_pattern.data_checked, via_harness.data_checked)
          << scheme << " on " << profile->name;
      EXPECT_EQ(via_pattern.verified, via_harness.verified)
          << scheme << " on " << profile->name;
    }
  }
}

// --- 2. seed BENCH byte-equivalence -------------------------------------

// Mirrors run_all's `--quick` scheme_sweep plan; the golden was written
// by the pre-refactor driver with exactly these coordinates.
TEST(TransferEquivalence, SchemeSweepJsonMatchesSeedGolden) {
  ExperimentPlan plan;
  plan.name = "scheme_sweep";
  plan.profiles.clear();
  for (const auto& name : MachineProfile::names())
    plan.profiles.push_back(&MachineProfile::by_name(name));
  for (const auto& name : extended_scheme_names())
    plan.schemes.push_back(name);
  plan.layouts = {LayoutAxis::stride2(), LayoutAxis::indexed_blocks()};
  plan.sizes_bytes = {100'000, 10'000'000};
  plan.harness.reps = 5;
  plan.functional_payload_limit = 1 << 16;

  ResultStore store;
  store.add_plan(run_plan(plan, {4}));
  std::ostringstream os;
  store.write_bench_sweep_json(os);
  EXPECT_EQ(os.str(), read_golden("BENCH_scheme_sweep.json"));
}

// Mirrors run_all's `--quick` pattern_sweep plan restricted to the
// scheme set the pre-refactor engine supported: deleting the mirrored
// SchemeSend switch must not move a single byte for those schemes.
TEST(TransferEquivalence, PatternSweepJsonMatchesSeedGolden) {
  ExperimentPlan plan;
  plan.name = "pattern_sweep";
  plan.patterns = {"pingpong", "multi-pair(4)", "halo2d(3x3)",
                   "transpose(4)"};
  plan.profiles = {&MachineProfile::skx_impi(), &MachineProfile::knl_impi()};
  plan.schemes = {"reference", "copying",    "vector type",
                  "subarray",  "packing(e)", "packing(v)"};
  plan.sizes_bytes = {8'192, 524'288};
  plan.harness.reps = 5;
  plan.functional_payload_limit = 1 << 14;

  ResultStore store;
  store.add_plan(run_plan(plan, {4}));
  std::ostringstream os;
  store.write_bench_pattern_sweep_json(os);
  EXPECT_EQ(os.str(), read_golden("BENCH_pattern_sweep.json"));
}

// Mirrors run_all's `--quick` eager_limit ablation.
TEST(TransferEquivalence, EagerLimitJsonMatchesSeedGolden) {
  ExperimentPlan plan;
  plan.name = "eager_limit";
  plan.profiles = {&MachineProfile::skx_impi()};
  plan.sizes_bytes = {1'000'000'000};
  plan.schemes = {"reference", "vector type"};
  plan.harness.reps = 5;
  plan.functional_payload_limit = 1 << 16;

  const PlanResult base = run_plan(plan, {4});
  constexpr std::size_t override_bytes = std::size_t{4} << 30;
  plan.eager_limit_override = override_bytes;
  const PlanResult raised = run_plan(plan, {4});
  std::ostringstream os;
  ResultStore::write_bench_eager_limit_json(os, base.sweep(0, 0),
                                            raised.sweep(0, 0),
                                            override_bytes);
  EXPECT_EQ(os.str(), read_golden("BENCH_eager_limit.json"));
}

// --- 3. issend is the nonblocking face of ssend -------------------------

TEST(TransferEquivalence, IssendWaitMatchesSsendClocks) {
  for (const std::size_t elems : {256u, 1u << 15}) {  // eager + rendezvous
    double ssend_clock = 0.0, issend_clock = 0.0;
    const auto run = [&](bool nonblocking, double* out) {
      minimpi::UniverseOptions opts;
      opts.nranks = 2;
      minimpi::Universe::run(opts, [&](minimpi::Comm& comm) {
        const minimpi::Datatype f64 = minimpi::Datatype::float64();
        std::vector<double> data(elems);
        if (comm.rank() == 0) {
          if (nonblocking) {
            minimpi::Request r =
                comm.issend(data.data(), elems, f64, 1, 3);
            r.wait();
          } else {
            comm.ssend(data.data(), elems, f64, 1, 3);
          }
          *out = comm.clock();
        } else {
          comm.recv(data.data(), elems, f64, 0, 3);
        }
      });
    };
    run(false, &ssend_clock);
    run(true, &issend_clock);
    EXPECT_EQ(issend_clock, ssend_clock) << elems << " doubles";
    EXPECT_GT(ssend_clock, 0.0);
  }
}

}  // namespace
