// Protocol tracing: tests assert the *mechanism* a transfer used.
#include <gtest/gtest.h>

#include <sstream>

#include "minimpi/minimpi.hpp"

using namespace minimpi;

namespace {

std::shared_ptr<TraceLog> traced_pingpong(std::size_t bytes,
                                          bool noncontig = false) {
  auto log = std::make_shared<TraceLog>();
  UniverseOptions o;
  o.nranks = 2;
  o.trace = log;
  Universe::run(o, [&](Comm& c) {
    const std::size_t elems = bytes / 8;
    Datatype t = noncontig
                     ? Datatype::vector(elems, 1, 2, Datatype::float64())
                     : Datatype::contiguous(elems, Datatype::float64());
    t.commit();
    if (c.rank() == 0) {
      Buffer src = Buffer::allocate((noncontig ? 2 : 1) * bytes,
                                    c.moves_payload(bytes));
      c.send(src.data(), 1, t, 1, 0);
      c.recv(nullptr, 0, Datatype::byte(), 1, 1);
    } else {
      Buffer dst = Buffer::allocate(bytes, c.moves_payload(bytes));
      c.recv(dst.data(), elems, Datatype::float64(), 0, 0);
      c.send(nullptr, 0, Datatype::byte(), 0, 1);
    }
  });
  return log;
}

TEST(Trace, SmallMessagesGoEager) {
  auto log = traced_pingpong(1024);
  EXPECT_EQ(log->count(TraceEvent::send_rendezvous), 0u);
  EXPECT_EQ(log->count(TraceEvent::send_eager), 2u);  // ping + pong
  EXPECT_EQ(log->count(TraceEvent::recv_complete), 2u);
}

TEST(Trace, LargeMessagesGoRendezvous) {
  auto log = traced_pingpong(1 << 20);
  EXPECT_EQ(log->count(TraceEvent::send_rendezvous), 1u);  // the ping
  EXPECT_EQ(log->count(TraceEvent::send_eager), 1u);       // 0-byte pong
}

TEST(Trace, NoncontigRendezvousRecordsStagedBytes) {
  auto log = traced_pingpong(1 << 20, /*noncontig=*/true);
  bool found = false;
  for (const auto& r : log->records()) {
    if (r.event == TraceEvent::send_rendezvous) {
      EXPECT_EQ(r.staged_bytes, std::size_t{1} << 20);
      EXPECT_EQ(r.rank, 0);
      EXPECT_EQ(r.peer, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Trace, ContiguousRendezvousStagesNothing) {
  auto log = traced_pingpong(1 << 20, /*noncontig=*/false);
  for (const auto& r : log->records())
    if (r.event == TraceEvent::send_rendezvous) {
      EXPECT_EQ(r.staged_bytes, 0u);  // zero-copy path
    }
}

TEST(Trace, BufferedAndReadyModesRecorded) {
  auto log = std::make_shared<TraceLog>();
  UniverseOptions o;
  o.nranks = 2;
  o.trace = log;
  Universe::run(o, [&](Comm& c) {
    std::vector<double> buf(16);
    if (c.rank() == 0) {
      auto attach = Buffer::allocate(4096);
      c.buffer_attach(attach);
      c.bsend(buf.data(), 16, Datatype::float64(), 1, 0);
      c.rsend(buf.data(), 16, Datatype::float64(), 1, 1);
      c.buffer_detach();
    } else {
      c.recv(buf.data(), 16, Datatype::float64(), 0, 0);
      c.recv(buf.data(), 16, Datatype::float64(), 0, 1);
    }
  });
  EXPECT_EQ(log->count(TraceEvent::send_buffered), 1u);
  EXPECT_EQ(log->count(TraceEvent::send_ready), 1u);
}

TEST(Trace, RmaEventsRecorded) {
  auto log = std::make_shared<TraceLog>();
  UniverseOptions o;
  o.nranks = 2;
  o.trace = log;
  Universe::run(o, [&](Comm& c) {
    std::vector<double> local(8, 0.0);
    Window win = c.win_create(local.data(), 64);
    win.fence();
    if (c.rank() == 0) {
      const double x = 1.0;
      win.put(&x, 1, Datatype::float64(), 1, 0);
      win.get(local.data(), 1, Datatype::float64(), 1, 0);
    }
    win.fence();
  });
  EXPECT_EQ(log->count(TraceEvent::rma_put), 1u);
  EXPECT_EQ(log->count(TraceEvent::rma_get), 1u);
  EXPECT_EQ(log->count(TraceEvent::win_fence), 4u);  // 2 fences x 2 ranks
}

TEST(Trace, DumpIsHumanReadableAndSorted) {
  auto log = traced_pingpong(1 << 20, true);
  std::ostringstream os;
  log->dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("send.rendezvous"), std::string::npos);
  EXPECT_NE(out.find("recv.complete"), std::string::npos);
  EXPECT_NE(out.find("staged"), std::string::npos);
  // Times are nondecreasing line by line.
  auto records = log->records();
  std::stable_sort(records.begin(), records.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.vtime < b.vtime;
                   });
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_LE(records[i - 1].vtime, records[i].vtime);
}

TEST(Trace, DisabledByDefault) {
  // No trace sink attached: nothing crashes, nothing recorded anywhere.
  UniverseOptions o;
  o.nranks = 2;
  EXPECT_FALSE(o.trace);
  Universe::run(o, [](Comm& c) {
    double x = 1.0;
    if (c.rank() == 0) c.send(&x, 1, Datatype::float64(), 1, 0);
    else c.recv(&x, 1, Datatype::float64(), 0, 0);
  });
}

TEST(Trace, ClearResets) {
  auto log = traced_pingpong(1024);
  EXPECT_GT(log->size(), 0u);
  log->clear();
  EXPECT_EQ(log->size(), 0u);
}

}  // namespace
