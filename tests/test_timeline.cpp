// The charge-timeline layer (minimpi/net/timeline.hpp): typed atoms,
// resource occupancy, the sequence scheduler, and the per-rank NIC
// ledger behind emergent contention.
//
// The load-bearing invariants:
//   1. same-resource atoms serialize: a serial run's finish is its
//      start plus the left-to-right sum of its durations — which is
//      why the redesigned model degenerates to the legacy closed-form
//      sums in the fully serial case (DESIGN.md §2.8);
//   2. cross-resource atoms overlap exactly when the capability
//      profile says the hardware can (`nic_gather`);
//   3. the NIC ledger is FIFO in ticket order, bit-inert when
//      disabled, and deterministic when enabled;
//   4. the scheduled protocol compositions reproduce the legacy sums
//      (the three seed BENCH_*.json goldens are byte-compared against
//      the redesigned model in test_transfer_equivalence.cpp — the
//      end-to-end face of the same invariant).
#include <gtest/gtest.h>

#include <array>
#include <thread>

#include "minimpi/minimpi.hpp"
#include "ncsend/ncsend.hpp"

using namespace minimpi;

namespace {

const MachineProfile& skx() { return MachineProfile::skx_impi(); }

BlockStats strided_stats(std::size_t bytes, std::size_t block = 8) {
  return {bytes / block, bytes, block, block};
}
BlockStats contig_stats(std::size_t bytes) {
  return {1, bytes, bytes, bytes};
}

// --- atom vocabulary ------------------------------------------------------

TEST(Atoms, DeclaredResources) {
  EXPECT_EQ(resource_of(ChargeAtom::cpu_pack), Resource::cpu);
  EXPECT_EQ(resource_of(ChargeAtom::internal_copy), Resource::cpu);
  EXPECT_EQ(resource_of(ChargeAtom::call_overhead), Resource::cpu);
  EXPECT_EQ(resource_of(ChargeAtom::match), Resource::cpu);
  EXPECT_EQ(resource_of(ChargeAtom::capacity_penalty), Resource::cpu);
  EXPECT_EQ(resource_of(ChargeAtom::wire), Resource::nic);
  EXPECT_EQ(resource_of(ChargeAtom::injection), Resource::nic);
  EXPECT_EQ(resource_of(ChargeAtom::handshake), Resource::none);
  EXPECT_EQ(resource_of(ChargeAtom::fence), Resource::none);
  EXPECT_EQ(resource_of(ChargeAtom::net_latency), Resource::none);
}

TEST(Atoms, WireOccupiesCpuUnlessNicGather) {
  const NicCapabilities serial{false};
  const NicCapabilities gather{true};
  EXPECT_TRUE(occupies_cpu(ChargeAtom::wire, serial));
  EXPECT_FALSE(occupies_cpu(ChargeAtom::wire, gather));
  // An injection drains an already-staged buffer: never needs the CPU.
  EXPECT_FALSE(occupies_cpu(ChargeAtom::injection, serial));
  EXPECT_TRUE(occupies_nic(ChargeAtom::wire));
  EXPECT_TRUE(occupies_nic(ChargeAtom::injection));
  EXPECT_FALSE(occupies_nic(ChargeAtom::cpu_pack));
}

TEST(Atoms, Names) {
  EXPECT_EQ(to_string(ChargeAtom::cpu_pack), "cpu_pack");
  EXPECT_EQ(to_string(ChargeAtom::capacity_penalty), "capacity_penalty");
  EXPECT_EQ(to_string(Resource::nic), "nic");
}

// --- the sequence scheduler ----------------------------------------------

TEST(Schedule, SameResourceSerializes) {
  const std::array<Charge, 3> seq{{{ChargeAtom::call_overhead, 1.0, 0},
                                   {ChargeAtom::cpu_pack, 2.0, 64},
                                   {ChargeAtom::internal_copy, 4.0, 64}}};
  std::vector<PlacedCharge> placed;
  const auto r = schedule_sequence(10.0, seq, {}, {}, &placed);
  EXPECT_DOUBLE_EQ(r.finish, 10.0 + (1.0 + 2.0 + 4.0));
  ASSERT_EQ(placed.size(), 3u);
  EXPECT_DOUBLE_EQ(placed[0].start, 10.0);
  EXPECT_DOUBLE_EQ(placed[1].start, 11.0);
  EXPECT_DOUBLE_EQ(placed[2].start, 13.0);
  EXPECT_DOUBLE_EQ(placed[2].finish, 17.0);
}

TEST(Schedule, WireSerializesBehindPackWithoutNicGather) {
  const std::array<Charge, 2> seq{{{ChargeAtom::cpu_pack, 3.0, 0},
                                   {ChargeAtom::wire, 5.0, 0}}};
  const auto serial = schedule_sequence(0.0, seq, NicCapabilities{false});
  EXPECT_DOUBLE_EQ(serial.finish, 8.0);  // pack + wire, nothing overlaps
}

TEST(Schedule, NicGatherOverlapsPackAndWire) {
  const std::array<Charge, 2> seq{{{ChargeAtom::cpu_pack, 3.0, 0},
                                   {ChargeAtom::wire, 5.0, 0}}};
  std::vector<PlacedCharge> placed;
  const auto overlap =
      schedule_sequence(0.0, seq, NicCapabilities{true}, {}, &placed);
  EXPECT_DOUBLE_EQ(overlap.finish, 5.0);  // max(pack, wire)
  EXPECT_DOUBLE_EQ(placed[1].start, 0.0);  // wire starts with the pack
  // The slower side decides: a long pack gates a short wire.
  const std::array<Charge, 2> seq2{{{ChargeAtom::cpu_pack, 7.0, 0},
                                    {ChargeAtom::wire, 5.0, 0}}};
  EXPECT_DOUBLE_EQ(
      schedule_sequence(0.0, seq2, NicCapabilities{true}).finish, 7.0);
}

TEST(Schedule, JoinAtomsBarrierBothResources) {
  // pack ; handshake ; injection: the join forces the injection to
  // wait even though pack and injection occupy disjoint resources.
  const std::array<Charge, 3> seq{{{ChargeAtom::cpu_pack, 2.0, 0},
                                   {ChargeAtom::handshake, 1.0, 0},
                                   {ChargeAtom::injection, 4.0, 0}}};
  std::vector<PlacedCharge> placed;
  const auto r = schedule_sequence(0.0, seq, {}, {}, &placed);
  EXPECT_DOUBLE_EQ(placed[1].start, 2.0);
  EXPECT_DOUBLE_EQ(placed[2].start, 3.0);
  EXPECT_DOUBLE_EQ(r.finish, 7.0);
}

TEST(Schedule, EmptyAndZeroDurationSequences) {
  EXPECT_DOUBLE_EQ(schedule_sequence(5.0, {}, {}).finish, 5.0);
  const std::array<Charge, 3> zeros{{{ChargeAtom::call_overhead, 0.0, 0},
                                     {ChargeAtom::handshake, 0.0, 0},
                                     {ChargeAtom::injection, 0.0, 0}}};
  EXPECT_DOUBLE_EQ(schedule_sequence(5.0, zeros, {}).finish, 5.0);
}

TEST(Schedule, Deterministic) {
  const std::array<Charge, 4> seq{{{ChargeAtom::call_overhead, 0.25, 0},
                                   {ChargeAtom::cpu_pack, 1.5, 8},
                                   {ChargeAtom::wire, 2.0, 8},
                                   {ChargeAtom::net_latency, 0.5, 0}}};
  std::vector<PlacedCharge> a, b;
  const auto ra = schedule_sequence(1.0, seq, {}, {}, &a);
  const auto rb = schedule_sequence(1.0, seq, {}, {}, &b);
  EXPECT_EQ(ra.finish, rb.finish);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].finish, b[i].finish);
  }
}

// --- degeneration to the legacy closed forms -----------------------------

TEST(Degeneration, EagerTimingIsTheLegacySum) {
  const CostModel m(skx());
  for (const std::size_t n : {0uL, 64uL, 4096uL, 32768uL}) {
    for (const bool noncontig : {false, true}) {
      const BlockStats st = noncontig ? strided_stats(std::max<std::size_t>(n, 8))
                                      : contig_stats(n);
      const double ts = 0.375;
      const auto t = m.eager_timing(ts, n, st);
      const double local =
          skx().send_overhead_s + (st.block_count > 1
                                       ? m.internal_staging_time(n, st)
                                       : m.internal_contiguous_copy_time(n));
      EXPECT_DOUBLE_EQ(t.sender_done, ts + local) << n;
      EXPECT_DOUBLE_EQ(t.arrival,
                       t.sender_done + m.wire_time(n) + skx().net_latency_s)
          << n;
    }
  }
}

TEST(Degeneration, RendezvousTimingIsTheLegacySum) {
  const CostModel m(skx());
  const std::size_t n = 1 << 24;  // far beyond capacity: penalty active
  for (const bool noncontig : {false, true}) {
    const BlockStats st = noncontig ? strided_stats(n) : contig_stats(n);
    const auto t = m.rendezvous_timing(1.0, 2.5, n, st);
    const double start = std::max(1.0, 2.5) + skx().rendezvous_handshake_s;
    const double pack =
        st.block_count > 1 ? m.internal_staging_time(n, st) : 0.0;
    EXPECT_DOUBLE_EQ(t.sender_done, start + (pack + m.wire_time(n)));
    EXPECT_DOUBLE_EQ(t.arrival, t.sender_done + skx().net_latency_s);
  }
}

TEST(Degeneration, RecvCompletionIsTheLegacySum) {
  const CostModel m(skx());
  const std::size_t n = 4096;
  // Expected contiguous receive: match overhead only.
  EXPECT_DOUBLE_EQ(m.recv_completion(0.0, 7.0, n, contig_stats(n), true),
                   7.0 + skx().recv_overhead_s);
  // Unexpected eager: copy-out from MPI's buffer rides on top.
  EXPECT_DOUBLE_EQ(
      m.recv_completion(9.0, 7.0, n, contig_stats(n), true),
      9.0 + (skx().recv_overhead_s + m.internal_contiguous_copy_time(n)));
}

TEST(Degeneration, RsendAndBsendStayWithinRounding) {
  // rsend/bsend emit decomposed atom chains whose left-to-right sum can
  // differ from the legacy association in the last bit; the quantized
  // wtime tick absorbs it (the goldens pin the end-to-end bytes).
  const CostModel m(skx());
  const std::size_t n = 1 << 22;
  const BlockStats st = strided_stats(n);
  const auto r = m.rsend_timing(0.5, n, st);
  const double legacy_rs =
      0.5 + (skx().send_overhead_s + m.internal_staging_time(n, st)) +
      m.wire_time(n);
  EXPECT_NEAR(r.sender_done, legacy_rs, 1e-12 * legacy_rs);
  const auto b = m.bsend_timing(0.5, n, st);
  const double legacy_bs_local =
      0.5 + skx().send_overhead_s + skx().bsend_overhead_s +
      static_cast<double>(n) / skx().bsend_copy_bandwidth_Bps *
          m.block_factor(st);
  EXPECT_NEAR(b.sender_done, legacy_bs_local, 1e-12 * legacy_bs_local);
  EXPECT_GT(b.arrival, b.sender_done);
}

TEST(Degeneration, NicGatherOverlapsRendezvousAndDropsPenalty) {
  MachineProfile p = skx();
  const std::size_t n = 1 << 26;
  const BlockStats st = strided_stats(n);
  const CostModel serial(p);
  p.nic_gather = true;
  const CostModel gather(p);
  const auto ts = serial.rendezvous_timing(0.0, 0.0, n, st);
  const auto tg = gather.rendezvous_timing(0.0, 0.0, n, st);
  // Overlap: the sender is busy for max(gather, wire), not the sum —
  // and the staging buffer (and its beyond-capacity penalty) is gone.
  const double start = serial.handshake_time();
  EXPECT_DOUBLE_EQ(
      tg.sender_done,
      start + std::max(gather.staging_base_time(n, st), gather.wire_time(n)));
  EXPECT_LT(tg.arrival, ts.arrival);
}

// --- the NIC ledger -------------------------------------------------------

TEST(NicLedger, DisabledIsInert) {
  NicLedger l(false);
  EXPECT_FALSE(l.enabled());
  EXPECT_EQ(l.ticket(), 0u);
  EXPECT_DOUBLE_EQ(l.inject(0, 3.25, 10.0), 3.25);  // exactly `ready`
  EXPECT_DOUBLE_EQ(l.busy_until(), 0.0);
}

TEST(NicLedger, FifoQueuesOverlappingInjections) {
  NicLedger l(true);
  const auto t0 = l.ticket();
  const auto t1 = l.ticket();
  const auto t2 = l.ticket();
  EXPECT_DOUBLE_EQ(l.inject(t0, 10.0, 5.0), 10.0);  // idle NIC: on time
  EXPECT_DOUBLE_EQ(l.inject(t1, 12.0, 2.0), 15.0);  // queued behind t0
  EXPECT_DOUBLE_EQ(l.inject(t2, 30.0, 1.0), 30.0);  // queue drained
  EXPECT_DOUBLE_EQ(l.busy_until(), 31.0);
}

TEST(NicLedger, SkipKeepsTheQueueMoving) {
  NicLedger l(true);
  const auto t0 = l.ticket();
  const auto t1 = l.ticket();
  l.skip(t0);
  EXPECT_DOUBLE_EQ(l.inject(t1, 1.0, 1.0), 1.0);
}

TEST(NicLedger, ResolutionWaitsForTicketOrder) {
  // A resolver for ticket 1 blocks until ticket 0 resolves on another
  // thread — the cross-thread case a rendezvous receiver exercises.
  NicLedger l(true);
  const auto t0 = l.ticket();
  const auto t1 = l.ticket();
  double start1 = -1.0;
  std::thread second([&] { start1 = l.inject(t1, 0.0, 1.0); });
  std::thread first([&] { l.inject(t0, 2.0, 3.0); });
  first.join();
  second.join();
  EXPECT_DOUBLE_EQ(start1, 5.0);  // queued behind [2, 5)
}

// --- emergent contention end to end --------------------------------------

/// Transpose-style fan-out: rank 0 isends one message to every other
/// rank, then everyone completes.  Returns rank 0's final clock.
double fanout_clock(int nranks, std::size_t elems, bool contention) {
  UniverseOptions opts;
  opts.nranks = nranks;
  opts.nic_occupancy_contention = contention;
  opts.wtime_resolution = 0.0;
  double out = 0.0;
  Universe::run(opts, [&](Comm& comm) {
    const Datatype f64 = Datatype::float64();
    std::vector<double> data(elems);
    if (comm.rank() == 0) {
      std::vector<Request> reqs;
      for (Rank r = 1; r < comm.size(); ++r)
        reqs.push_back(comm.isend(data.data(), elems, f64, r, 7));
      waitall(reqs);
    } else {
      comm.recv(data.data(), elems, f64, 0, 7);
    }
    const double t = comm.allreduce(comm.clock(), ReduceOp::max);
    if (comm.rank() == 0) out = t;
  });
  return out;
}

TEST(EmergentContention, FanOutInjectionsSerialize) {
  // 32 KB rides the eager path (skx limit: 64 KB) with a wire time
  // well above the send overhead, so back-to-back injections overlap;
  // 512 KB exercises the receiver-resolved rendezvous path.
  for (const std::size_t elems : {4096u, 1u << 16}) {
    const double off = fanout_clock(4, elems, false);
    const double on = fanout_clock(4, elems, true);
    EXPECT_GT(on, off) << elems << " doubles";
  }
}

TEST(EmergentContention, SingleMessageIsUnaffected) {
  // One send per NIC: the FIFO has nothing to queue behind, so the
  // enabled ledger must not move any clock (multi-pair's "no
  // degradation", now an emergent outcome instead of a parameter).
  for (const std::size_t elems : {512u, 1u << 16}) {
    EXPECT_DOUBLE_EQ(fanout_clock(2, elems, true),
                     fanout_clock(2, elems, false))
        << elems << " doubles";
  }
}

TEST(EmergentContention, StagedSendsNeverWaitOnPendingRendezvous) {
  // Regression: a staged-class send (eager here) posted after a
  // not-yet-matched rendezvous isend must not block — the two FIFO
  // classes are independent, so the eager envelope is delivered even
  // though the receiver matches the messages out of post order.
  UniverseOptions opts;
  opts.nranks = 2;
  opts.nic_occupancy_contention = true;
  opts.wtime_resolution = 0.0;
  Universe::run(opts, [&](Comm& comm) {
    const Datatype f64 = Datatype::float64();
    std::vector<double> big(1 << 16);  // rendezvous
    std::vector<double> small(8);      // eager
    if (comm.rank() == 0) {
      Request r = comm.isend(big.data(), big.size(), f64, 1, 1);
      comm.send(small.data(), small.size(), f64, 1, 2);  // must not hang
      r.wait();
    } else {
      comm.recv(small.data(), small.size(), f64, 0, 2);  // out of post order
      comm.recv(big.data(), big.size(), f64, 0, 1);
    }
  });
  SUCCEED();
}

TEST(EmergentContention, GatedReservationCoversThePenaltyTail) {
  // A put beyond the staging capacity occupies the NIC for its
  // injection *plus* the large-message penalty; a second put must
  // queue behind the whole run, not just the injection.
  MachineProfile p = MachineProfile::skx_impi();
  const CostModel m(p);
  const std::size_t big = 2 * p.internal_buffer_bytes;
  NicLedger ledger(true);
  NicGate g1{&ledger, ledger.ticket()};
  NicGate g2{&ledger, ledger.ticket()};
  const auto first = m.put_timing(0.0, big, contig_stats(big), g1);
  const auto charges = m.put_charges(big, contig_stats(big));
  double nic_seconds = 0.0;  // injection + penalty wire
  for (const Charge& c : charges.transit)
    if (occupies_nic(c.atom)) nic_seconds += c.seconds;
  EXPECT_DOUBLE_EQ(ledger.busy_until(), first.sender_done + nic_seconds);
  // Back-to-back second put: its injection starts where the first
  // run's tail (including the penalty) ends.
  const auto second = m.put_timing(0.0, big, contig_stats(big), g2);
  EXPECT_GT(second.arrival, first.arrival);
}

TEST(Schedule, OverlappingRunNeverPrecedesItsProducer) {
  // Under nic_gather a ready-mode send's wire overlaps the pack, but
  // it cannot start before the call that produces the data began.
  MachineProfile p = skx();
  p.nic_gather = true;
  const CostModel m(p);
  const std::size_t n = 1 << 20;
  std::vector<PlacedCharge> placed;
  (void)m.rsend_timing(0.0, n, strided_stats(n), {}, &placed);
  double overhead_start = -1.0, wire_start = -1.0;
  for (const PlacedCharge& c : placed) {
    if (c.atom == ChargeAtom::call_overhead) overhead_start = c.start;
    if (c.atom == ChargeAtom::wire) wire_start = c.start;
  }
  ASSERT_GE(overhead_start, 0.0);
  ASSERT_GE(wire_start, 0.0);
  EXPECT_GE(wire_start, overhead_start);
}

TEST(EmergentContention, DeterministicAcrossRuns) {
  const double a = fanout_clock(5, 1u << 14, true);
  const double b = fanout_clock(5, 1u << 14, true);
  EXPECT_EQ(a, b);
}

TEST(EmergentContention, TransposePatternSlowsMultiPairDoesNot) {
  // The acceptance shape of the redesign: NIC-occupancy contention
  // produces a nonzero slowdown on transpose(N) — N-1 injections per
  // rank genuinely overlap on one NIC — while multi-pair(P) (one
  // injection per rank) is untouched, which is the §4.7 observation
  // the static link_contention_factor cannot express (it would slow
  // both).
  const ncsend::Layout l = ncsend::Layout::strided(1 << 13, 1, 2);
  ncsend::HarnessConfig cfg;
  cfg.reps = 3;
  cfg.flush = false;
  const auto run = [&](const char* pattern, bool contention) {
    UniverseOptions opts;
    opts.wtime_resolution = 0.0;
    opts.nic_occupancy_contention = contention;
    const auto p = ncsend::CommPattern::by_name(pattern);
    return ncsend::run_pattern_experiment(opts, *p, "vector type", l, cfg)
        .time();
  };
  EXPECT_GT(run("transpose(4)", true), run("transpose(4)", false));
  EXPECT_DOUBLE_EQ(run("multi-pair(4)", true), run("multi-pair(4)", false));
}

// --- typed charge atoms in the trace --------------------------------------

TEST(ChargeTrace, RendezvousSendRecordsResourceTimeline) {
  auto trace = std::make_shared<TraceLog>();
  UniverseOptions opts;
  opts.nranks = 2;
  opts.trace = trace;
  opts.wtime_resolution = 0.0;
  const std::size_t elems = 1 << 16;  // rendezvous territory
  Universe::run(opts, [&](Comm& comm) {
    const Datatype f64 = Datatype::float64();
    std::vector<double> data(elems);
    if (comm.rank() == 0) {
      comm.send(data.data(), elems, f64, 1, 3);
    } else {
      comm.recv(data.data(), elems, f64, 0, 3);
    }
  });
  EXPECT_GT(trace->charge_count(ChargeAtom::handshake), 0u);
  EXPECT_GT(trace->charge_count(ChargeAtom::wire), 0u);
  EXPECT_GT(trace->charge_count(ChargeAtom::match), 0u);
  // The wire atom rides on rank 0's timeline and never starts before
  // the handshake completes.
  double handshake_end = 0.0, wire_start = 0.0;
  for (const ChargeRecord& r : trace->charges()) {
    if (r.atom == ChargeAtom::handshake && r.rank == 0)
      handshake_end = r.finish;
    if (r.atom == ChargeAtom::wire && r.rank == 0) wire_start = r.start;
  }
  EXPECT_GE(wire_start, handshake_end);
}

}  // namespace
